// Replica node: acceptor of per-record Paxos instances, per-record master
// for the classic path, and learner of transaction visibility.
//
// Safety argument (documented in DESIGN.md): an option is *chosen* when a
// fast quorum (N - floor(N/4)) or a classic quorum (majority, serialized by
// the key's master) accepts it. Every acceptor applies the same conflict
// check before accepting, so two conflicting options can never both be
// chosen: their quorums would overlap in an acceptor that accepted both
// while both were pending, which the check forbids. The commit point of a
// transaction is the coordinator's decision (all options chosen); replicas
// make options visible only on the coordinator's Visibility message, and
// physical transitions are applied in version order so replicas converge to
// identical state regardless of delivery order.
#ifndef PLANET_MDCC_REPLICA_H_
#define PLANET_MDCC_REPLICA_H_

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "mdcc/config.h"
#include "sim/node.h"
#include "storage/store.h"

namespace planet {

/// Reply to a (fast or classic) accept request.
struct VoteReply {
  bool accepted = false;
  /// Rejection breakdown (meaningful when !accepted).
  bool stale = false;     ///< version mismatch / bounds violated
  bool conflict = false;  ///< pending option of another transaction
};

/// Reply to a classic proposal.
struct ClassicReply {
  bool chosen = false;
  /// Rejected because the receiving DC is not the master of the option's
  /// key at the proposal's epoch (stale-epoch or misrouted proposal).
  bool wrong_master = false;
  /// The replica's current epoch for the key's group, so the coordinator
  /// can catch up without probing every DC.
  int epoch_hint = 0;
};

class Replica : public Node {
 public:
  Replica(Simulator* sim, Network* net, NodeId id, DcId dc, Rng rng,
          const MdccConfig& config);

  /// Wires up peer replicas (call once, after all replicas are built).
  void SetPeers(std::vector<Replica*> peers);

  Store& store() { return store_; }
  const Store& store() const { return store_; }

  // -- Acceptor ---------------------------------------------------------
  /// Fast-path accept: check the option against local state; accept if
  /// compatible. `reply` is routed back to the caller over the network.
  void HandleFastAccept(const WriteOption& option, NodeId reply_to,
                        std::function<void(VoteReply)> reply);

  // -- Master (classic path) -------------------------------------------
  /// Classic proposal: this replica must be the master of the option's key
  /// at the option's mastership epoch. It serializes the option (local
  /// check first), then gathers a classic quorum from its peers.
  /// `reply.chosen` means the option is chosen; a proposal carrying a stale
  /// epoch (or routed to the wrong DC) is rejected with `wrong_master`.
  void HandleClassicPropose(const WriteOption& option, NodeId reply_to,
                            std::function<void(ClassicReply)> reply);

  /// Peer-side accept of a master-forwarded option.
  void HandleMasterAccept(const WriteOption& option, NodeId master,
                          std::function<void(VoteReply)> reply);

  // -- Learner ----------------------------------------------------------
  /// Coordinator decision: commit makes every option visible (in version
  /// order for physical options); abort drops pending options.
  void HandleVisibility(TxnId txn, bool commit,
                        const std::vector<WriteOption>& options);

  /// Predictive early abort (experiment F11): the coordinator killed the
  /// transaction before its Paxos round resolved. Semantically an abort
  /// Visibility — pending options are dropped, the decision is learned so
  /// late accepts are refused and resolve queries answer — plus an explicit
  /// short-circuit of the resolve backoff so the slot returns immediately.
  /// Safe across failover and WAL recovery by construction: the body is
  /// idempotent, touches only volatile state (never the WAL), rides the
  /// incarnation-guarded service queue, and the Network drops deliveries to
  /// crashed nodes — a notice that raced a crash is simply re-resolved by
  /// the recovery protocol like any other lost decision.
  void HandleAbortNotice(TxnId txn, const std::vector<WriteOption>& options);

  uint64_t abort_notices_received() const { return abort_notices_received_; }

  // -- Reads ------------------------------------------------------------
  /// Committed-visibility read of a key (the serializable / causal path).
  void HandleRead(Key key, NodeId reply_to,
                  std::function<void(RecordView)> reply);

  /// Read-committed-visibility read: may expose a pending physical option's
  /// would-be state (see Store::ReadSpeculative); the reply says whether it
  /// did. Same service cost as HandleRead.
  /// Reply callback matches the HandleRead family's public RPC signature.
  void HandleReadSpeculative(  // planet-lint: allow(std-function-hot-path)
      Key key, NodeId reply_to, std::function<void(RecordView, bool)> reply);

  // -- Recovery ---------------------------------------------------------
  /// Starts the pending-option resolution protocol: every `period`, pending
  /// options older than the transaction timeout are resolved by asking peer
  /// replicas for the transaction's decision (which they learned from the
  /// Visibility broadcast). This heals replicas that were partitioned away
  /// when the decision was published. A decision unknown to every reachable
  /// peer (e.g. the coordinator was partitioned from the whole cluster) is
  /// retried next period.
  void EnableRecovery(Duration period);

  /// Peer-side: decision of `txn` if this replica learned it.
  /// Calls `reply(known, committed)`.
  void HandleResolveQuery(TxnId txn, std::function<void(bool, bool)> reply);

  uint64_t recovered_options() const { return recovered_options_; }

  /// Anti-entropy: pulls committed state from every peer and adopts fresher
  /// records (higher version; or more applied deltas for counter records).
  /// Heals a replica that missed commit visibilities for options it never
  /// voted on — run it after a partition heals (the harness exposes
  /// Cluster::HealDc, and operators would trigger it the same way).
  void RequestSyncAll();

  /// Peer side of anti-entropy: ships the committed state plus this
  /// replica's view of the mastership epochs (so a restarted replica does
  /// not resurrect a superseded epoch).
  void HandleSyncRequest(
      std::function<void(std::vector<SyncEntry>, std::vector<int>)> reply);

  uint64_t sync_records_adopted() const { return sync_records_adopted_; }

  // -- Crash / recovery --------------------------------------------------
  /// Powers the replica off: volatile state (pending options, classic
  /// rounds and queues, learned decisions, deferred chains, epochs) is
  /// lost; the WAL survives. In-flight messages to/from this node are
  /// dropped by the Network.
  void Crash();

  /// Powers the replica back on: replays the WAL to rebuild committed
  /// state, then runs RequestSyncAll to catch up on commits it missed.
  void Restart();

  /// Number of physical transitions waiting for earlier versions (tests).
  size_t DeferredCount() const;

  /// Experiment counters.
  uint64_t fast_accept_requests() const { return fast_accept_requests_; }
  uint64_t classic_proposals() const { return classic_proposals_; }
  uint64_t stale_epoch_rejects() const { return stale_epoch_rejects_; }
  uint64_t resolve_queries_sent() const { return resolve_queries_sent_; }

  /// This replica's view of the mastership epoch of a key group (groups are
  /// identified by the epoch-0 master DC).
  int group_epoch(int group) const {
    return group_epoch_[static_cast<size_t>(group)];
  }

 private:
  struct ClassicRound {
    WriteOption option;
    NodeId reply_to = kInvalidNodeId;
    std::function<void(ClassicReply)> reply;
    int accepts = 0;
    int rejects = 0;
    bool done = false;
  };

  /// Shared acceptor logic for fast and master-forwarded accepts.
  VoteReply TryAccept(const WriteOption& option);

  // Service-queue bodies of the public message handlers (the public entry
  // points charge config_.replica_service_cost on the node's serial CPU).
  void DoFastAccept(const WriteOption& option, NodeId reply_to,
                    std::function<void(VoteReply)> reply);
  void DoClassicPropose(const WriteOption& option, NodeId reply_to,
                        std::function<void(ClassicReply)> reply);
  void DoMasterAccept(const WriteOption& option, NodeId master,
                      std::function<void(VoteReply)> reply);
  void DoVisibility(TxnId txn, bool commit,
                    const std::vector<WriteOption>& options);
  void DoAbortNotice(TxnId txn, const std::vector<WriteOption>& options);
  void DoRead(Key key, NodeId reply_to,
              std::function<void(RecordView)> reply);
  void DoReadSpeculative(  // planet-lint: allow(std-function-hot-path)
      Key key, NodeId reply_to, std::function<void(RecordView, bool)> reply);

  /// Collects one peer vote for a classic round this node masters.
  void OnMasterVote(uint64_t round_id, VoteReply vote);

  /// Runs the quorum phase of a classic proposal this master has already
  /// accepted locally.
  void StartClassicRound(const WriteOption& option,
                         std::function<void(ClassicReply)> reply);

  /// Retries queued classic proposals for `key` after its pending state
  /// changed (visibility processed).
  void DrainClassicQueue(Key key);

  /// Applies a decided option respecting version order; defers physical
  /// transitions whose predecessor has not been applied here yet.
  void ApplyDecided(const WriteOption& option);

  /// Applies any deferred transitions that became applicable for `key`.
  void DrainDeferred(Key key);

  struct QueuedProposal {
    uint64_t qid = 0;
    WriteOption option;
    std::function<void(ClassicReply)> reply;
    EventId timeout_event = kInvalidEventId;
  };

  MdccConfig config_;
  Store store_;
  std::vector<Replica*> peers_;  // all replicas including this one
  std::unordered_map<uint64_t, ClassicRound> rounds_;
  /// Per-key serialization queue of classic proposals (master role).
  std::unordered_map<Key, std::deque<QueuedProposal>> classic_queue_;
  uint64_t next_qid_ = 1;
  uint64_t next_round_id_ = 1;
  /// key -> (read_version -> decided option) awaiting earlier versions.
  std::unordered_map<Key, std::map<Version, WriteOption>> deferred_;
  struct Decision {
    SimTime when = 0;
    bool commit = false;
  };
  /// Transactions whose decision this replica has learned; accepts for them
  /// are refused so a late FastAccept cannot strand a pending option after
  /// the Visibility broadcast has already passed; recovery queries are
  /// answered from here. GC'd after a horizon.
  std::unordered_map<TxnId, Decision> decided_;

  // -- Recovery state ----------------------------------------------------
  struct PendingTxn {
    SimTime since = 0;
    std::vector<WriteOption> options;
    /// Capped exponential backoff for resolve queries: a decision unknown
    /// to every reachable peer (long partition) must not generate a
    /// fixed-rate query storm.
    int resolve_attempts = 0;
    SimTime next_resolve = 0;
  };
  void ScheduleRecoveryScan();
  void RecoveryScan();
  void OnResolveReply(TxnId txn, bool known, bool commit);
  /// Records a failed resolve round for backoff purposes.
  void NoteResolveFailure(TxnId txn);
  void ResolveLocally(TxnId txn, bool commit);
  void OnSyncState(const std::vector<SyncEntry>& state,
                   const std::vector<int>& epochs);

  Duration recovery_period_ = 0;
  bool recovery_scan_scheduled_ = false;
  std::unordered_map<TxnId, PendingTxn> pending_since_;
  /// Outstanding recovery queries: txn -> unknown-replies still expected.
  std::unordered_map<TxnId, int> resolve_inflight_;
  uint64_t recovered_options_ = 0;
  uint64_t sync_records_adopted_ = 0;
  uint64_t resolve_queries_sent_ = 0;

  /// Highest mastership epoch seen per key group. Volatile: a restarted
  /// replica re-learns epochs from sync replies and incoming proposals.
  std::vector<int> group_epoch_;

  uint64_t fast_accept_requests_ = 0;
  uint64_t classic_proposals_ = 0;
  uint64_t stale_epoch_rejects_ = 0;
  uint64_t abort_notices_received_ = 0;
  /// Committed learns swallowed so far by the chaos_drop_learn mutation.
  uint64_t chaos_dropped_ = 0;
};

}  // namespace planet

#endif  // PLANET_MDCC_REPLICA_H_
