// Client-side transaction coordinator for the MDCC-style commit stack.
//
// The coordinator lives in the client library (as in MDCC/PLANET): it
// executes reads against the local data center's replica (read committed),
// buffers writes, and at commit time proposes one option per written key to
// the per-record Paxos instances — fast path first (direct to all replicas,
// fast quorum), with a classic fallback through the key's master once the
// fast quorum becomes unreachable. The transaction commits iff every option
// is chosen; the decision is broadcast as a Visibility message.
//
// Observability: every vote, option decision and phase change is surfaced
// through TxnObserver — this is the substrate for PLANET's progress
// callbacks and commit-likelihood prediction. A global vote listener
// additionally sees every vote (including votes that arrive after the
// transaction has been decided), feeding the predictor's latency/conflict
// models.
#ifndef PLANET_MDCC_CLIENT_H_
#define PLANET_MDCC_CLIENT_H_

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "check/history.h"
#include "common/inline_function.h"
#include "common/status.h"
#include "mdcc/config.h"
#include "mdcc/replica.h"
#include "sim/node.h"

namespace planet {

/// Commit phase of a transaction, exposed to applications via PLANET.
enum class TxnPhase {
  kExecuting,   ///< reads / buffered writes
  kProposing,   ///< fast-path options in flight
  kClassic,     ///< at least one option fell back to its master
  kCommitted,   ///< decided commit, visibility broadcast
  kAborted,     ///< decided abort, visibility broadcast
};

const char* TxnPhaseName(TxnPhase phase);

/// One acceptor vote observed by the coordinator.
struct VoteEvent {
  TxnId txn = kInvalidTxnId;
  Key key = 0;
  DcId replica_dc = 0;
  bool accepted = false;
  bool stale = false;     ///< rejected: version mismatch / bounds / decided
  bool conflict = false;  ///< rejected: pending option of another txn
  Duration rtt = 0;       ///< coordinator-observed round trip
  bool fast_path = true;
};

/// Coordinator-side progress of one option.
struct OptionProgress {
  WriteOption option;
  std::vector<int8_t> votes;  ///< per DC: -1 unknown, 0 reject, 1 accept
  int accepts = 0;
  int rejects = 0;
  bool decided = false;
  bool chosen = false;
  bool via_classic = false;
  bool classic_inflight = false;
  SimTime proposed_at = 0;
  /// Mastership epoch of the latest classic attempt and how many attempts
  /// were made (failover retries bump both).
  int classic_epoch = 0;
  int classic_attempts = 0;
  EventId failover_event = kInvalidEventId;
};

/// Full coordinator-side view of a transaction (used by the PLANET layer
/// to compute commit likelihood).
struct TxnView {
  TxnId id = kInvalidTxnId;
  TxnPhase phase = TxnPhase::kExecuting;
  SimTime begin_time = 0;
  SimTime propose_time = 0;
  SimTime classic_time = 0;  ///< first classic fallback (0 if none)
  SimTime decide_time = 0;
  Status outcome;
  std::vector<OptionProgress> options;
};

/// Hooks fired while a transaction is in flight. The hooks use the
/// simulator's small-buffer callable (move-only), so installing an observer
/// never allocates: every hook fires on the commit hot path. 32 bytes holds
/// the [this, txn] captures PLANET installs with room to spare.
struct TxnObserver {
  InlineFunction<void(const VoteEvent&), 32> on_vote;
  InlineFunction<void(Key key, bool chosen, bool via_classic), 32>
      on_option_decided;
  InlineFunction<void(TxnPhase phase), 32> on_phase;
};

/// Per-transaction commit-submission delays, keyed by TxnId. Transaction
/// ids are per-client sequence numbers ((node id << 40) | seq), so they are
/// stable across replays of the same seed — the predictive pass exploits
/// this to target one specific transaction of a re-run.
using ScheduleDelays = std::map<TxnId, Duration>;

/// The client node. One per simulated application server; owns the
/// coordinators of all transactions it begins. Not thread safe (simulated).
class Client : public Node {
 public:
  using ReadCallback = std::function<void(Status, RecordView)>;
  using CommitCallback = std::function<void(Status)>;
  /// Predictor-feed listeners fire on every vote / decision / send, so they
  /// share the observers' no-allocation callable. The predictor installs
  /// [this] lambdas; 32 bytes leaves headroom for a fatter consumer.
  using VoteListener = InlineFunction<void(const VoteEvent&), 32>;
  using OptionListener =
      InlineFunction<void(Key key, bool chosen, bool via_classic), 32>;
  using SendListener = InlineFunction<void(DcId dst_dc), 32>;
  using ClassicListener =
      InlineFunction<void(DcId master_dc, bool chosen, Duration rtt), 32>;

  Client(Simulator* sim, Network* net, NodeId id, DcId dc, Rng rng,
         const MdccConfig& config, std::vector<Replica*> replicas);

  /// Starts a transaction.
  TxnId Begin();

  /// Asynchronous read-committed read from the local DC replica. Records the
  /// observed version as the transaction's read version for `key`.
  void Read(TxnId txn, Key key, ReadCallback cb);

  /// Buffers a physical write. Requires a prior Read of `key` in this
  /// transaction (read-modify-write); otherwise kFailedPrecondition.
  [[nodiscard]] Status Write(TxnId txn, Key key, Value value);

  /// Buffers a commutative delta (no prior read required).
  [[nodiscard]] Status Add(TxnId txn, Key key, Value delta);

  /// Starts commit processing; `cb` fires exactly once with the outcome:
  /// OK, Aborted (conflict), or Unavailable (timeout / partition).
  /// Read-only transactions commit immediately.
  void Commit(TxnId txn, CommitCallback cb);

  /// Drops an unsubmitted transaction.
  void AbortEarly(TxnId txn);

  /// Predictive early abort (PLANET, experiment F11): abandons a submitted,
  /// still-undecided transaction immediately instead of riding the Paxos
  /// round to its certain end. The commit callback fires with Aborted, and
  /// an AbortNotice broadcast (MsgClass::kAbortNotice) proactively releases
  /// the transaction's pending options at every replica — late votes and
  /// classic replies are ignored, and no further fallback work is started
  /// for the transaction. The coordinator is the sole decider, so killing
  /// before any decision exists is always safe. Returns false (no-op) when
  /// the transaction is unknown, not yet submitted, or already decided.
  bool KillInFlight(TxnId txn);

  uint64_t early_kills() const { return early_kills_; }

  /// Live view of a transaction; nullptr once it has been garbage collected
  /// (shortly after its decision).
  const TxnView* View(TxnId txn) const;

  /// Writes buffered so far (pre-commit); used by admission control to
  /// estimate a prior commit likelihood before any message is sent.
  std::vector<WriteOption> PendingWrites(TxnId txn) const;

  /// Installs per-transaction hooks (PLANET layer).
  void SetObserver(TxnId txn, TxnObserver observer);

  /// Sees every vote this client ever observes (predictor feed).
  void SetGlobalVoteListener(VoteListener listener);

  /// Sees every option decision (predictor feed: option-level outcomes).
  void SetGlobalOptionListener(OptionListener listener);

  /// Sees every protocol request this client sends, keyed by destination
  /// DC (predictor feed: reachability probes).
  void SetGlobalSendListener(SendListener listener);

  /// Sees every classic-proposal reply with the master DC that answered
  /// (predictor feed: reachability acks for masters that never fast-vote).
  void SetGlobalClassicListener(ClassicListener listener);

  /// Attaches a history recorder: every decided transaction is logged with
  /// its validated reads, writes, outcome and timestamps (correctness
  /// oracles). Null (the default) records nothing and adds no work, no
  /// events and no RNG draws, so uninstrumented runs stay bit-identical.
  void SetHistoryRecorder(HistoryRecorder* recorder) { recorder_ = recorder; }

  /// Sets the isolation mode for transactions this client begins from now
  /// on. kSerializable (the default) leaves every code path untouched —
  /// bit-identical to the pre-mode stack. kReadCommitted switches reads to
  /// speculative visibility; kCausal adds the client-side session floor
  /// (monotonic reads / read-your-writes across transactions).
  void SetIsolation(IsolationLevel isolation) { isolation_ = isolation; }
  IsolationLevel isolation() const { return isolation_; }

  /// Attaches per-transaction commit-submission delays (predictive-replay
  /// directives): Commit(txn) defers proposing by the mapped duration.
  /// Null (the default) adds no lookup side effects; the map must outlive
  /// the client. Unmatched transactions are unaffected.
  void SetScheduleDelays(const ScheduleDelays* delays) { delays_ = delays; }

  /// This coordinator's view of a key group's mastership epoch.
  int group_epoch(int group) const {
    return group_epoch_[static_cast<size_t>(group)];
  }

  uint64_t failovers() const { return failovers_; }

  const MdccConfig& config() const { return config_; }
  Replica* local_replica() const { return replicas_[static_cast<size_t>(dc_)]; }

  /// Outcome counters.
  uint64_t committed() const { return committed_; }
  uint64_t aborted() const { return aborted_; }
  uint64_t timed_out() const { return timed_out_; }
  uint64_t classic_fallbacks() const { return classic_fallbacks_; }

 private:
  /// What one read observed, with the metadata the history records.
  struct ObservedRead {
    Version version = 0;
    bool speculative = false;
    SimTime at = 0;
  };

  struct TxnState {
    TxnView view;
    // Ordered: these are iterated when proposing and committing, and the
    // iteration order decides message order on the wire — std::map keeps
    // that order platform-independent (hash order is not).
    std::map<Key, ObservedRead> read_versions;
    std::map<Key, WriteOption> writes;
    CommitCallback commit_cb;
    TxnObserver observer;
    EventId timeout_event = kInvalidEventId;
    int outstanding_replies = 0;
    int options_decided = 0;
    bool done = false;
    bool cb_fired = false;
    /// Killed by KillInFlight: vote/classic handlers stop driving the
    /// option state machine (no classic fallback for a dead transaction).
    bool early_killed = false;
  };

  TxnState* Find(TxnId txn);
  OptionProgress* FindOption(TxnState& state, Key key);

  /// Body of Commit once any schedule delay has elapsed: stamps the propose
  /// time and proposes (or decides a read-only txn immediately).
  void StartCommit(TxnState& state);
  void ProposeFast(TxnState& state);
  void StartClassic(TxnState& state, OptionProgress& op);
  void OnVoteEvent(const VoteEvent& event);
  void OnClassicResult(TxnId txn, Key key, int attempt_epoch, DcId master_dc,
                       ClassicReply result, Duration rtt);
  /// Fires when a classic attempt got no reply within
  /// master_failover_timeout: bumps the group epoch and re-proposes to the
  /// next epoch's master.
  void OnClassicFailover(TxnId txn, Key key, int attempt_epoch);
  void OnOptionDecided(TxnState& state, OptionProgress& op, bool chosen,
                       bool via_classic);
  void OnTimeout(TxnId txn);
  /// `early_kill` routes the decision broadcast through AbortNotice instead
  /// of Visibility (KillInFlight only; the vanilla paths never set it).
  void Decide(TxnState& state, bool commit, Status outcome,
              bool early_kill = false);
  void SetPhase(TxnState& state, TxnPhase phase);
  void MaybeGc(TxnId txn);

  /// Builds the recorder entry for a decided transaction (recorder_ set).
  void RecordDecision(const TxnState& state, bool commit,
                      const Status& outcome);

  MdccConfig config_;
  std::vector<Replica*> replicas_;
  HistoryRecorder* recorder_ = nullptr;
  IsolationLevel isolation_ = IsolationLevel::kSerializable;
  const ScheduleDelays* delays_ = nullptr;
  /// kCausal only: highest view of each key this session has observed or
  /// committed (monotonic reads / read-your-writes across transactions).
  /// Ordered map for deterministic teardown; accessed per key only.
  std::map<Key, RecordView> session_floor_;
  std::unordered_map<TxnId, TxnState> txns_;
  VoteListener global_vote_listener_;
  OptionListener global_option_listener_;
  SendListener global_send_listener_;
  ClassicListener global_classic_listener_;
  /// This coordinator's mastership-epoch view per key group. Advanced by
  /// failover timeouts and by epoch hints in classic replies; never moves
  /// backward, so a revived old master is simply not used again.
  std::vector<int> group_epoch_;
  uint64_t next_local_txn_ = 1;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
  uint64_t timed_out_ = 0;
  uint64_t classic_fallbacks_ = 0;
  uint64_t failovers_ = 0;
  uint64_t early_kills_ = 0;
};

}  // namespace planet

#endif  // PLANET_MDCC_CLIENT_H_
